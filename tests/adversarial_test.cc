// Adversarial-robustness layer end to end: offer vetting bounds, server-side
// overload control (admission shedding + amortized lease sweep), the
// memory-admission regression, fleet defenses against a rogue deployment
// server (bogus offers, NAK floods, blackhole acks), and Byzantine standby
// detection / demotion / re-mirroring.
#include <gtest/gtest.h>

#include "testbed/population.h"
#include "testbed/testbed.h"

namespace pvn {
namespace {

// --- vet_offer: sanity bounds ------------------------------------------------

Offer sane_offer(SimTime now) {
  Offer o;
  o.deployment_server = Ipv4Addr(10, 0, 0, 5);
  o.total_price = 1.5;
  o.expires_at = now + seconds(30);
  o.lease_duration = seconds(30);
  o.capacity_bytes = 1 * kGiB;
  return o;
}

TEST(VetOffer, SaneOfferPasses) {
  const SimTime now = seconds(5);
  EXPECT_EQ(vet_offer(sane_offer(now), 18 * kMiB, {}, now), OfferDefect::kNone);
}

TEST(VetOffer, NonFiniteOrNegativePrice) {
  const SimTime now = 0;
  Offer o = sane_offer(now);
  o.total_price = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(vet_offer(o, 0, {}, now), OfferDefect::kPriceNotFinite);
  o.total_price = std::numeric_limits<double>::infinity();
  EXPECT_EQ(vet_offer(o, 0, {}, now), OfferDefect::kPriceNotFinite);
  o.total_price = -0.01;
  EXPECT_EQ(vet_offer(o, 0, {}, now), OfferDefect::kPriceNotFinite);
}

TEST(VetOffer, AbsurdPrice) {
  const SimTime now = 0;
  Offer o = sane_offer(now);
  OfferBounds bounds;
  o.total_price = bounds.max_price * 2;
  EXPECT_EQ(vet_offer(o, 0, bounds, now), OfferDefect::kPriceAbsurd);
}

TEST(VetOffer, ExpiryBounds) {
  const SimTime now = seconds(100);
  Offer o = sane_offer(now);
  o.expires_at = now - 1;
  EXPECT_EQ(vet_offer(o, 0, {}, now), OfferDefect::kExpired);
  o.expires_at = now;  // an offer expiring "right now" is already dead
  EXPECT_EQ(vet_offer(o, 0, {}, now), OfferDefect::kExpired);
  OfferBounds bounds;
  o.expires_at = now + bounds.max_offer_ttl + 1;
  EXPECT_EQ(vet_offer(o, 0, bounds, now), OfferDefect::kExpiryTooFar);
  // expires_at == 0 means "no expiry attached", not "expired at t=0".
  o.expires_at = 0;
  EXPECT_EQ(vet_offer(o, 0, bounds, now), OfferDefect::kNone);
}

TEST(VetOffer, LeaseBounds) {
  const SimTime now = 0;
  Offer o = sane_offer(now);
  OfferBounds bounds;
  // The rogue-server attack: a nonzero lease too short for any renewal
  // cadence to sustain. Negotiation never looks at the lease; vetting must.
  o.lease_duration = milliseconds(1);
  EXPECT_EQ(vet_offer(o, 0, bounds, now), OfferDefect::kLeaseTooShort);
  o.lease_duration = bounds.max_lease + 1;
  EXPECT_EQ(vet_offer(o, 0, bounds, now), OfferDefect::kLeaseTooLong);
  // 0 = deploy-forever, a legitimate (lease-free) server.
  o.lease_duration = 0;
  EXPECT_EQ(vet_offer(o, 0, bounds, now), OfferDefect::kNone);
}

TEST(VetOffer, CapacityBounds) {
  const SimTime now = 0;
  Offer o = sane_offer(now);
  OfferBounds bounds;
  o.capacity_bytes = -1;
  EXPECT_EQ(vet_offer(o, 0, bounds, now), OfferDefect::kCapacityImplausible);
  o.capacity_bytes = bounds.max_capacity_bytes + 1;
  EXPECT_EQ(vet_offer(o, 0, bounds, now), OfferDefect::kCapacityImplausible);
  // Insufficient capacity only rejects when the caller opted in: a full
  // host is not misbehaving, and the NAK path covers it otherwise.
  o.capacity_bytes = 6 * kMiB;
  EXPECT_EQ(vet_offer(o, 18 * kMiB, bounds, now), OfferDefect::kNone);
  bounds.require_capacity = true;
  EXPECT_EQ(vet_offer(o, 18 * kMiB, bounds, now),
            OfferDefect::kInsufficientCapacity);
  o.capacity_bytes = 18 * kMiB;
  EXPECT_EQ(vet_offer(o, 18 * kMiB, bounds, now), OfferDefect::kNone);
}

TEST(VetOffer, DefectPrecedenceIsMostFundamentalFirst) {
  // An offer broken in several ways reports the structural defect first.
  const SimTime now = seconds(100);
  Offer o = sane_offer(now);
  o.total_price = -1.0;
  o.expires_at = now - 1;
  o.lease_duration = milliseconds(1);
  o.capacity_bytes = -5;
  EXPECT_EQ(vet_offer(o, 0, {}, now), OfferDefect::kPriceNotFinite);
  o.total_price = 1.0;
  EXPECT_EQ(vet_offer(o, 0, {}, now), OfferDefect::kExpired);
  o.expires_at = now + seconds(30);
  EXPECT_EQ(vet_offer(o, 0, {}, now), OfferDefect::kLeaseTooShort);
  o.lease_duration = seconds(30);
  EXPECT_EQ(vet_offer(o, 0, {}, now), OfferDefect::kCapacityImplausible);
}

// --- Overload control: admission shedding ------------------------------------

TEST(Overload, FlashCrowdIsShedWithExplicitBusyNacks) {
  PopulationConfig cfg;
  cfg.clients = 4;
  cfg.max_pending_deploys = 1;
  PopulationTestbed tb(cfg);
  tb.make_agents();

  // All four devices fire their one-shot deploy at once; the server admits
  // one at a time and sheds the burst with typed kBusy NAKs instead of
  // letting requests queue (or time out) silently.
  std::vector<DeployOutcome> outcomes(tb.agents.size());
  for (std::size_t i = 0; i < tb.agents.size(); ++i) {
    tb.agents[i]->discover_and_deploy(
        tb.addrs.control_a, [&outcomes, i](const DeployOutcome& o) {
          outcomes[i] = o;
        });
  }
  tb.net.sim().run_until(seconds(10));

  int ok = 0, busy = 0;
  for (const DeployOutcome& o : outcomes) {
    if (o.ok) {
      ++ok;
    } else if (o.nack_code == NackCode::kBusy) {
      ++busy;
      // The shed carries the server's retry-after hint verbatim.
      EXPECT_EQ(o.retry_after, milliseconds(500));
    }
  }
  EXPECT_GE(ok, 1);
  EXPECT_GE(busy, 1);
  EXPECT_EQ(ok + busy, static_cast<int>(outcomes.size()));
  EXPECT_GE(tb.a.server->deploys_shed(), 1u);
  EXPECT_LE(tb.a.server->pending_deploys(), 1u);
}

TEST(Overload, SessionModeHonorsRetryAfterAndConverges) {
  PopulationConfig cfg;
  cfg.clients = 4;
  cfg.max_pending_deploys = 1;
  PopulationTestbed tb(cfg);
  tb.make_agents();

  for (auto& agent : tb.agents) agent->start_session(tb.addrs.control_a);
  tb.net.sim().run_until(seconds(15));

  // Every shed client backed off by the server's hint and redeployed; the
  // storm serializes instead of failing.
  EXPECT_EQ(tb.active_agents(), 4);
  EXPECT_EQ(tb.a.server->deployments_active(), 4u);
  EXPECT_GE(tb.a.server->deploys_shed(), 1u);
  std::uint64_t busy_nacks = 0;
  for (const auto& agent : tb.agents) busy_nacks += agent->busy_nacks();
  EXPECT_GE(busy_nacks, 1u);
}

// --- Overload control: memory admission (regression) -------------------------

TEST(Overload, MemoryAdmissionUsesTheHostsRealInstanceCost) {
  // Regression: admission used to price the chain at the PVNC's own
  // estimate (the default 6 MiB/instance), so on a host configured with
  // heavier instances an inadmissible chain passed the check, failed
  // mid-instantiation, and could strand partial allocations.
  TestbedConfig cfg;
  cfg.mbox.memory_per_instance = 8 * kMiB;
  cfg.mbox.memory_budget = 20 * kMiB;
  Testbed tb(cfg);

  Pvnc three;
  three.name = "dev-3mod";
  three.chain.push_back(PvncModule{"tls-validator", {{"mode", "block"}}});
  three.chain.push_back(PvncModule{"dns-validator", {{"mode", "block"}}});
  three.chain.push_back(PvncModule{"pii-detector", {{"action", "block"}}});

  // Estimated cost 3 x 6 = 18 MiB (under budget); real cost 3 x 8 = 24 MiB.
  const DeployOutcome refused = tb.deploy(three);
  EXPECT_FALSE(refused.ok);
  EXPECT_EQ(refused.nack_code, NackCode::kOutOfMemory);
  // Refused up-front: nothing was instantiated, nothing leaked.
  EXPECT_EQ(tb.mbox_host->memory_in_use(), 0);
  EXPECT_EQ(tb.server->deployments_active(), 0u);

  // A chain that genuinely fits (2 x 8 = 16 MiB) still deploys.
  Pvnc two;
  two.name = "dev-2mod";
  two.chain.push_back(PvncModule{"tls-validator", {{"mode", "block"}}});
  two.chain.push_back(PvncModule{"dns-validator", {{"mode", "block"}}});
  const DeployOutcome accepted = tb.deploy(two);
  EXPECT_TRUE(accepted.ok);
  EXPECT_EQ(tb.mbox_host->memory_in_use(), 16 * kMiB);
}

// --- Overload control: amortized lease sweep ---------------------------------

TEST(Overload, MassLeaseExpiryDrainsInBoundedBatches) {
  PopulationConfig cfg;
  cfg.clients = 24;
  cfg.lease_duration = seconds(1);
  cfg.max_expiries_per_sweep = 4;
  PopulationTestbed tb(cfg);
  tb.make_agents();

  // One-shot deploys: nobody renews, so all 24 leases expire together.
  for (auto& agent : tb.agents) {
    agent->discover_and_deploy(tb.addrs.control_a, nullptr);
  }
  tb.net.sim().run_until(seconds(1));
  ASSERT_EQ(tb.a.server->deployments_active(), 24u);

  tb.net.sim().run_until(seconds(6));
  // Everything was reclaimed, but never more than the batch cap in one
  // tick: the mass expiry amortizes across drain ticks instead of
  // monopolizing the event loop.
  EXPECT_EQ(tb.a.server->leases_expired(), 24u);
  EXPECT_EQ(tb.a.server->deployments_active(), 0u);
  EXPECT_LE(tb.a.server->max_swept_per_tick(), 4u);
  EXPECT_GE(tb.a.server->sweep_ticks(), 6u);
  // The reclaimed memory really came back.
  EXPECT_EQ(tb.a.mbox->memory_in_use(), 0);
}

// --- Rogue server: bogus offers ----------------------------------------------

TEST(RogueServer, BogusOffersAreVettedOutAndTheSenderQuarantined) {
  PopulationConfig cfg;
  cfg.clients = 6;
  cfg.rogue = true;
  cfg.rogue_mode = RogueMode::kBogusOffers;
  PopulationTestbed tb(cfg);

  ClientConfig base;
  base.extra_servers = {tb.addrs.rogue};  // the rogue joins every auction
  tb.make_agents(base, /*shared_scoreboard=*/true);
  for (auto& agent : tb.agents) agent->start_session(tb.addrs.control_a);
  tb.net.sim().run_until(seconds(2));

  // The rogue undercut every honest quote, but its 1 ms lease failed
  // vetting: nobody deployed to it, everyone landed on the honest network.
  EXPECT_EQ(tb.active_agents(), 6);
  EXPECT_EQ(tb.a.server->deployments_active(), 6u);
  EXPECT_GT(tb.rogue->offers_sent(), 0u);
  EXPECT_EQ(tb.rogue->fake_acks(), 0u);
  std::uint64_t rejected = 0;
  for (const auto& agent : tb.agents) rejected += agent->offers_rejected();
  EXPECT_GE(rejected, 6u);
  // The fleet-shared scoreboard pooled the reports and quarantined the
  // rogue for everyone.
  EXPECT_GE(tb.scoreboard.violations(Misbehavior::kBogusOffer), 3u);
  EXPECT_TRUE(
      tb.scoreboard.quarantined(tb.addrs.rogue.to_string(), tb.net.sim().now()));
}

TEST(RogueServer, UnvettedClientsFallForTheBogusOffer) {
  // The control experiment: with vetting off and no scoreboard, the rogue's
  // undercut price wins the auction and devices deploy into a fake ack.
  PopulationConfig cfg;
  cfg.clients = 2;
  cfg.rogue = true;
  cfg.rogue_mode = RogueMode::kBogusOffers;
  PopulationTestbed tb(cfg);

  ClientConfig base;
  base.extra_servers = {tb.addrs.rogue};
  base.vet_offers = false;
  tb.make_agents(base);

  std::vector<DeployOutcome> outcomes(tb.agents.size());
  for (std::size_t i = 0; i < tb.agents.size(); ++i) {
    tb.agents[i]->discover_and_deploy(
        tb.addrs.control_a, [&outcomes, i](const DeployOutcome& o) {
          outcomes[i] = o;
        });
  }
  tb.net.sim().run_until(seconds(5));

  EXPECT_GT(tb.rogue->fake_acks(), 0u);
  for (const DeployOutcome& o : outcomes) {
    ASSERT_TRUE(o.ok);
    EXPECT_EQ(o.chain_id.rfind("rogue:", 0), 0u) << o.chain_id;
  }
  EXPECT_EQ(tb.a.server->deployments_active(), 0u);
}

// --- Rogue server: NAK flood -------------------------------------------------

TEST(RogueServer, NakFloodTripsTheBreakerAndTheFleetConverges) {
  PopulationConfig cfg;
  cfg.clients = 4;
  cfg.rogue = true;
  cfg.rogue_mode = RogueMode::kNakFlood;
  PopulationTestbed tb(cfg);

  ClientConfig base;
  base.extra_servers = {tb.addrs.rogue};
  base.use_breaker = true;
  tb.make_agents(base, /*shared_scoreboard=*/true);
  for (auto& agent : tb.agents) agent->start_session(tb.addrs.control_a);
  tb.net.sim().run_until(seconds(40));

  // The rogue's offers looked sane, so clients deployed into its kBusy
  // wall and honored the (long) retry-after; the circuit breaker and the
  // NAK-flood reputation reports cut it out of the auction, and everyone
  // converged on the honest network.
  EXPECT_GT(tb.rogue->naks_sent(), 0u);
  EXPECT_EQ(tb.active_agents(), 4);
  EXPECT_EQ(tb.a.server->deployments_active(), 4u);
  std::uint64_t busy = 0;
  for (const auto& agent : tb.agents) busy += agent->busy_nacks();
  EXPECT_GE(busy, 3u);
  EXPECT_GE(tb.scoreboard.violations(Misbehavior::kNakFlood), 1u);
}

// --- Rogue server: blackhole acks --------------------------------------------

TEST(RogueServer, BlackholeAcksAreCaughtByTheLeaseHeartbeat) {
  PopulationConfig cfg;
  cfg.clients = 4;
  cfg.rogue = true;
  cfg.rogue_mode = RogueMode::kBlackhole;
  PopulationTestbed tb(cfg);

  ClientConfig base;
  base.extra_servers = {tb.addrs.rogue};
  tb.make_agents(base, /*shared_scoreboard=*/true);
  for (auto& agent : tb.agents) agent->start_session(tb.addrs.control_a);
  tb.net.sim().run_until(seconds(60));

  // The blackhole passed vetting and won the auction with a fake ack; the
  // unanswered renewals are what exposed it. Each victim reported an audit
  // failure against it, the shared scoreboard quarantined it, and the next
  // rediscovery round landed everyone on the honest network.
  EXPECT_GE(tb.rogue->fake_acks(), 1u);
  EXPECT_GE(tb.scoreboard.violations(Misbehavior::kAuditFailure), 2u);
  EXPECT_EQ(tb.active_agents(), 4);
  EXPECT_EQ(tb.a.server->deployments_active(), 4u);
  std::uint64_t failovers = 0;
  for (const auto& agent : tb.agents) failovers += agent->failovers();
  EXPECT_GE(failovers, 1u);
}

// --- Byzantine standby -------------------------------------------------------

Pvnc stateful_pvnc() {
  Pvnc pvnc;
  pvnc.name = "alice-phone";
  pvnc.chain.push_back(PvncModule{"tls-validator", {{"mode", "block"}}});
  pvnc.chain.push_back(PvncModule{"classifier", {}});
  pvnc.chain.push_back(PvncModule{"tracker-blocker", {}});
  return pvnc;
}

TEST(Byzantine, LyingStandbyIsDemotedAndDeploymentsRemirror) {
  TestbedConfig cfg;
  cfg.standby = true;
  cfg.extra_standby_pools = 1;
  cfg.lease_duration = seconds(2);
  cfg.checkpoint_interval = milliseconds(100);
  Testbed tb(cfg);
  // Pool 0's agent acks every checkpoint with a forged digest.
  tb.standby_agent->set_byzantine(true);

  ClientConfig ccfg;
  ccfg.constraints.required_modules = {"tls-validator"};
  PvnClient agent(*tb.client, stateful_pvnc(), ccfg);
  agent.set_fallback(tb.device_tunnel.get());
  agent.start_session(tb.addrs.control);
  tb.net.sim().run_until(seconds(2));

  // The digest cross-check caught the liar within a few checkpoints and
  // re-mirrored the deployment onto the honest pool — while the active
  // session never noticed.
  ASSERT_EQ(agent.state(), SessionState::kActive);
  EXPECT_GE(tb.server->bad_state_acks(), 3u);
  EXPECT_EQ(tb.server->standbys_demoted(), 1u);
  EXPECT_GE(tb.server->standbys_remirrored(), 1u);
  EXPECT_GE(tb.server->standbys_ready(), 2u);  // pool 0, then pool 1
  EXPECT_EQ(agent.failovers(), 0u);
  // The warm copy now lives on the honest pool, not the liar.
  EXPECT_NE(tb.extra_standby_mboxes[0]->chain(agent.chain_id()), nullptr);

  // Once demoted, the pool stays demoted: bad acks stop accruing actions.
  const std::uint64_t demotions = tb.server->standbys_demoted();
  tb.net.sim().run_until(seconds(3));
  EXPECT_EQ(tb.server->standbys_demoted(), demotions);

  // Crash the primary: promotion comes from the honest pool and the
  // session survives end to end.
  tb.net.sim().schedule_at(seconds(3), [&] { tb.mbox_host->crash(); });
  tb.net.sim().run_until(seconds(4));
  EXPECT_EQ(tb.server->standby_promotions(), 1u);
  EXPECT_EQ(agent.state(), SessionState::kActive);
  EXPECT_EQ(agent.failovers(), 0u);
  EXPECT_EQ(tb.server->chains_lost(), 0u);

  // Renewals keep landing on the promoted deployment.
  const std::uint64_t acked = agent.renews_acked();
  tb.net.sim().run_until(seconds(8));
  EXPECT_EQ(agent.state(), SessionState::kActive);
  EXPECT_GT(agent.renews_acked(), acked);
}

TEST(Byzantine, HonestStandbysAreNeverDemoted) {
  TestbedConfig cfg;
  cfg.standby = true;
  cfg.lease_duration = seconds(2);
  cfg.checkpoint_interval = milliseconds(100);
  Testbed tb(cfg);

  ClientConfig ccfg;
  PvnClient agent(*tb.client, stateful_pvnc(), ccfg);
  agent.start_session(tb.addrs.control);
  tb.net.sim().run_until(seconds(3));

  ASSERT_EQ(agent.state(), SessionState::kActive);
  EXPECT_GT(tb.server->checkpoints_streamed(), 0u);
  EXPECT_EQ(tb.server->bad_state_acks(), 0u);
  EXPECT_EQ(tb.server->standbys_demoted(), 0u);
}

}  // namespace
}  // namespace pvn


