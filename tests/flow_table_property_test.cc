// Property tests for the two-level (hashed exact-match + wildcard fallback)
// FlowTable: randomized rule sets and packets run through the indexed table
// and a reference linear-scan implementation side by side, asserting
// identical winners, hit counters, miss counts, and removal behavior.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "netsim/network.h"
#include "sdn/flow_table.h"
#include "util/rng.h"

namespace pvn {
namespace {

// The pre-index FlowTable semantics, verbatim: a sorted vector (priority
// desc, specificity desc, insertion order) scanned linearly per lookup.
class ReferenceTable {
 public:
  void add(FlowRule rule) {
    const int prio = rule.priority;
    const int spec = rule.match.specificity();
    auto it = rules_.begin();
    for (; it != rules_.end(); ++it) {
      if (it->priority < prio) break;
      if (it->priority == prio && it->match.specificity() < spec) break;
    }
    rules_.insert(it, std::move(rule));
  }

  std::size_t remove_by_cookie(const std::string& cookie) {
    return remove_if(
        [&cookie](const FlowRule& rule) { return rule.cookie == cookie; });
  }

  std::size_t remove_if(const std::function<bool(const FlowRule&)>& pred) {
    std::size_t removed = 0;
    for (std::size_t i = rules_.size(); i-- > 0;) {
      if (pred(rules_[i])) {
        rules_.erase(rules_.begin() + static_cast<std::ptrdiff_t>(i));
        ++removed;
      }
    }
    return removed;
  }

  const FlowRule* lookup(const Packet& pkt, int in_port) const {
    for (const FlowRule& rule : rules_) {
      if (rule.match.matches(pkt, in_port)) {
        ++rule.hit_packets;
        rule.hit_bytes += pkt.size();
        return &rule;
      }
    }
    ++misses_;
    return nullptr;
  }

  const std::vector<FlowRule>& rules() const { return rules_; }
  std::uint64_t misses() const { return misses_; }

 private:
  std::vector<FlowRule> rules_;
  mutable std::uint64_t misses_ = 0;
};

// Small value pools so random rules and packets actually collide.
const std::uint8_t kOctets[] = {1, 2, 3};
const Port kPorts[] = {53, 80, 443, 5000};
const IpProto kProtos[] = {IpProto::kTcp, IpProto::kUdp, IpProto::kEsp};
const int kPrefixLens[] = {0, 8, 16, 24, 32, 32};  // bias toward exact

Ipv4Addr random_addr(Rng& rng) {
  return Ipv4Addr(10, kOctets[rng.next_below(3)], kOctets[rng.next_below(3)],
                  kOctets[rng.next_below(3)]);
}

FlowRule random_rule(Rng& rng, int index) {
  FlowRule rule;
  rule.priority = static_cast<int>(rng.next_below(4)) * 10;
  rule.cookie = "r" + std::to_string(index);
  FlowMatch& m = rule.match;
  if (rng.bernoulli(0.3)) m.in_port = static_cast<int>(rng.next_below(3));
  if (rng.bernoulli(0.5)) {
    m.src = Prefix{random_addr(rng),
                   kPrefixLens[rng.next_below(std::size(kPrefixLens))]};
  }
  if (rng.bernoulli(0.6)) {
    m.dst = Prefix{random_addr(rng),
                   kPrefixLens[rng.next_below(std::size(kPrefixLens))]};
  }
  if (rng.bernoulli(0.5)) m.proto = kProtos[rng.next_below(3)];
  if (rng.bernoulli(0.3)) m.src_port = kPorts[rng.next_below(4)];
  if (rng.bernoulli(0.3)) m.dst_port = kPorts[rng.next_below(4)];
  if (rng.bernoulli(0.2)) m.tos = static_cast<std::uint8_t>(rng.next_below(2) * 0x20);
  return rule;
}

Packet random_packet(Network& net, Rng& rng) {
  const IpProto proto = kProtos[rng.next_below(3)];
  Bytes l4;
  if (proto == IpProto::kTcp) {
    TcpHeader hdr;
    hdr.src_port = kPorts[rng.next_below(4)];
    hdr.dst_port = kPorts[rng.next_below(4)];
    l4 = serialize_tcp(hdr, Bytes(32, 0xAB));
  } else if (proto == IpProto::kUdp) {
    UdpHeader hdr;
    hdr.src_port = kPorts[rng.next_below(4)];
    hdr.dst_port = kPorts[rng.next_below(4)];
    l4 = serialize_udp(hdr, Bytes(32, 0xCD));
  } else {
    l4 = Bytes(16, 0x11);  // portless
  }
  Packet pkt = net.make_packet(random_addr(rng), random_addr(rng), proto,
                               std::move(l4));
  pkt.ip.tos = static_cast<std::uint8_t>(rng.next_below(2) * 0x20);
  return pkt;
}

void expect_same_winner(const FlowRule* got, const FlowRule* want,
                        std::size_t packet_no) {
  if (want == nullptr) {
    EXPECT_EQ(got, nullptr) << "packet " << packet_no << ": indexed table hit "
                            << (got ? got->cookie : "") << ", reference missed";
    return;
  }
  ASSERT_NE(got, nullptr) << "packet " << packet_no
                          << ": indexed table missed, reference hit "
                          << want->cookie;
  EXPECT_EQ(got->cookie, want->cookie) << "packet " << packet_no;
}

void expect_same_state(const FlowTable& table, const ReferenceTable& ref) {
  ASSERT_EQ(table.size(), ref.rules().size());
  EXPECT_EQ(table.misses(), ref.misses());
  for (std::size_t i = 0; i < ref.rules().size(); ++i) {
    const FlowRule& a = table.rules()[i];
    const FlowRule& b = ref.rules()[i];
    EXPECT_EQ(a.cookie, b.cookie) << "rule order diverged at " << i;
    EXPECT_EQ(a.hit_packets, b.hit_packets) << a.cookie;
    EXPECT_EQ(a.hit_bytes, b.hit_bytes) << a.cookie;
  }
}

class FlowTableProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowTableProperty, MatchesLinearScanReference) {
  Rng rng(GetParam());
  Network net;
  FlowTable table;
  ReferenceTable ref;

  const int kRules = 120;
  for (int i = 0; i < kRules; ++i) {
    FlowRule rule = random_rule(rng, i);
    table.add(rule);
    ref.add(rule);
  }

  const std::size_t kPackets = 400;
  for (std::size_t p = 0; p < kPackets; ++p) {
    const Packet pkt = random_packet(net, rng);
    const int in_port = static_cast<int>(rng.next_below(3));
    expect_same_winner(table.lookup(pkt, in_port), ref.lookup(pkt, in_port), p);
  }
  expect_same_state(table, ref);
}

TEST_P(FlowTableProperty, RemovalKeepsTablesInLockstep) {
  Rng rng(GetParam() + 1000);
  Network net;
  FlowTable table;
  ReferenceTable ref;

  // Duplicate cookies so remove_by_cookie erases several rules at once.
  for (int i = 0; i < 100; ++i) {
    FlowRule rule = random_rule(rng, i);
    rule.cookie = "owner" + std::to_string(i % 10);
    table.add(rule);
    ref.add(rule);
  }

  for (int round = 0; round < 10; ++round) {
    // Interleave lookups with structural changes.
    for (int p = 0; p < 40; ++p) {
      const Packet pkt = random_packet(net, rng);
      const int in_port = static_cast<int>(rng.next_below(3));
      expect_same_winner(table.lookup(pkt, in_port), ref.lookup(pkt, in_port),
                         static_cast<std::size_t>(round * 100 + p));
    }
    if (round % 2 == 0) {
      const std::string cookie = "owner" + std::to_string(rng.next_below(10));
      EXPECT_EQ(table.remove_by_cookie(cookie), ref.remove_by_cookie(cookie));
    } else {
      const int prio = static_cast<int>(rng.next_below(4)) * 10;
      const auto pred = [prio](const FlowRule& r) {
        return r.priority == prio && r.hit_packets == 0;
      };
      EXPECT_EQ(table.remove_if(pred), ref.remove_if(pred));
    }
    expect_same_state(table, ref);
  }
}

TEST(FlowTableProperty, FifoTieBreakAmongIdenticalMatches) {
  Network net;
  FlowTable table;
  for (int i = 0; i < 4; ++i) {
    FlowRule rule;
    rule.priority = 7;
    rule.match.dst = *Prefix::parse("10.1.1.1");
    rule.match.proto = IpProto::kUdp;
    rule.cookie = "dup" + std::to_string(i);
    table.add(rule);
  }
  UdpHeader hdr;
  hdr.src_port = 1;
  hdr.dst_port = 2;
  const Packet pkt =
      net.make_packet(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 1, 1, 1),
                      IpProto::kUdp, serialize_udp(hdr, Bytes(8, 0)));
  const FlowRule* hit = table.lookup(pkt, 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cookie, "dup0");  // first inserted wins
  // Removing the winner promotes the next insertion, not another candidate.
  table.remove_by_cookie("dup0");
  EXPECT_EQ(table.lookup(pkt, 0)->cookie, "dup1");
}

TEST(FlowTableProperty, CachedSpecificityMatchesRecomputation) {
  Rng rng(99);
  FlowTable table;
  for (int i = 0; i < 64; ++i) table.add(random_rule(rng, i));
  for (const FlowRule& rule : table.rules()) {
    EXPECT_EQ(rule.cached_specificity, rule.match.specificity());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowTableProperty,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace pvn
