// End-to-end integration tests: deployed PVNs defending against live
// attacks, anycast discovery across providers, multi-device deployments,
// tunnel policies, and protocol failure injection.
#include <gtest/gtest.h>

#include "mbox/inline_modules.h"
#include "pvn/pvnc_parser.h"
#include "testbed/testbed.h"

namespace pvn {
namespace {

// --- Deployed PVN vs live attacks ------------------------------------------------

TEST(E2E, TlsMitmBlockedByDeployedValidator) {
  Testbed tb;
  Pvnc pvnc;
  pvnc.name = "alice-phone";
  pvnc.chain.push_back(PvncModule{"tls-validator", {{"mode", "block"}}});
  ASSERT_TRUE(tb.deploy(pvnc).ok);

  // MITM on the malicious host presents a rogue chain for web.example.
  CertificateAuthority rogue("RogueCA", 666);
  KeyPair mitm_key(667);
  const Certificate forged =
      rogue.issue("web.example", mitm_key.public_key(), 0, seconds(100000));
  std::unique_ptr<TlsServer> mitm_tls;
  tb.malicious->tcp_listen(443, [&](TcpConnection& conn) {
    mitm_tls = std::make_unique<TlsServer>(
        conn, CertChain{forged, rogue.self_certificate()}, mitm_key);
  });

  // A broken app (no validation) connects through the PVN.
  TcpConnection& conn = tb.client->tcp_connect(tb.addrs.malicious, 443);
  TlsClient naive(conn, "web.example", nullptr, TlsClientPolicy::kNone, 1);
  tb.net.sim().run_until(tb.net.sim().now() + seconds(30));

  // The PVN killed the handshake before the app could be intercepted.
  EXPECT_FALSE(naive.info().established);
  Chain* chain = tb.mbox_host->chain("chain:alice-phone:0");
  ASSERT_NE(chain, nullptr);
  bool found = false;
  for (const MboxFinding& f : chain->findings()) {
    if (f.kind == "tls-invalid-cert") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(E2E, HonestTlsUnaffectedByDeployedValidator) {
  Testbed tb;
  Pvnc pvnc;
  pvnc.name = "alice-phone";
  pvnc.chain.push_back(PvncModule{"tls-validator", {{"mode", "block"}}});
  ASSERT_TRUE(tb.deploy(pvnc).ok);

  const Certificate honest = tb.root_ca->issue(
      "web.example", tb.web_tls_key->public_key(), 0, seconds(100000));
  std::unique_ptr<TlsServer> tls;
  tb.web->tcp_listen(443, [&](TcpConnection& conn) {
    tls = std::make_unique<TlsServer>(
        conn, CertChain{honest, tb.root_ca->self_certificate()},
        *tb.web_tls_key);
    tls->set_on_data([&](const Bytes& data) { tls->send(data); });
  });
  TcpConnection& conn = tb.client->tcp_connect(tb.addrs.web, 443);
  TlsClient client(conn, "web.example", &tb.trust, TlsClientPolicy::kStrict, 2);
  std::string echoed;
  client.set_on_connected([&](const TlsSessionInfo& info) {
    EXPECT_EQ(info.cert_status, CertStatus::kOk);
    client.send(to_bytes("through the pvn"));
  });
  client.set_on_data([&](const Bytes& data) { echoed = to_string(data); });
  tb.net.sim().run_until(tb.net.sim().now() + seconds(30));
  EXPECT_TRUE(client.info().established);
  EXPECT_EQ(echoed, "through the pvn");
}

TEST(E2E, DnsForgeryBlockedByDeployedValidator) {
  Testbed tb;
  tb.dns_server->forge("web.example", Ipv4Addr(66, 6, 6, 6));
  Pvnc pvnc;
  pvnc.name = "alice-phone";
  pvnc.chain.push_back(PvncModule{"dns-validator", {{"mode", "block"}}});
  ASSERT_TRUE(tb.deploy(pvnc).ok);

  StubResolver stub(*tb.client, {tb.addrs.dns});
  DnsResult result;
  result.status = DnsResult::Status::kOk;
  stub.resolve("web.example", [&](const DnsResult& r) { result = r; }, 1,
               seconds(1));
  tb.net.sim().run_until(tb.net.sim().now() + seconds(10));
  // The forged (pin-mismatching) answer was dropped in-network.
  EXPECT_EQ(result.status, DnsResult::Status::kTimeout);
}

TEST(E2E, MalwareBlockedByDeployedDetector) {
  Testbed tb;
  Pvnc pvnc;
  pvnc.name = "alice-phone";
  pvnc.chain.push_back(PvncModule{"malware-detector", {{"mode", "block"}}});
  ASSERT_TRUE(tb.deploy(pvnc).ok);

  // The malicious host serves a payload carrying the known signature.
  HttpServer evil_http(*tb.malicious);
  evil_http.set_handler([](const HttpRequest& req) {
    HttpResponse resp;
    resp.body = to_bytes("benign-looking EVIL_SHELLCODE payload");
    (void)req;
    return resp;
  });
  HttpClient http(*tb.client);
  bool completed = false;
  http.fetch(tb.addrs.malicious, 80, "/download",
             [&](const HttpResponse&, const FetchTiming& t) {
               completed = t.ok;
             });
  tb.net.sim().run_until(tb.net.sim().now() + seconds(120));
  EXPECT_FALSE(completed);  // the infected response never reached the device
}

TEST(E2E, TunnelPolicyRedirectsViaCloudGateway) {
  Testbed tb;
  const std::string text = R"(
pvnc "alice-phone" {
  policy tunnel proto=udp dport=443 gateway=203.0.113.5
}
)";
  const auto parsed = parse_pvnc(text);
  ASSERT_TRUE(std::holds_alternative<Pvnc>(parsed));
  ASSERT_TRUE(tb.deploy(std::get<Pvnc>(parsed)).ok);

  int got = 0;
  tb.web->bind_udp(443, [&](Ipv4Addr src, Port, Port, const Bytes&) {
    ++got;
    // Cloud gateway NAT means the server sees the gateway, not the client.
    EXPECT_EQ(src, tb.addrs.cloud_gw);
  });
  tb.client->send_udp(tb.addrs.web, 5555, 443, Bytes(32, 7));
  tb.net.sim().run_until(tb.net.sim().now() + seconds(10));
  EXPECT_EQ(got, 1);
  EXPECT_EQ(tb.cloud_gw->decapsulated(), 1u);
}

TEST(E2E, TunnelReturnPathDecapsulatesAtSwitch) {
  Testbed tb;
  Pvnc pvnc;
  pvnc.name = "alice-phone";
  PvncPolicy tunnel;
  tunnel.kind = PvncPolicy::Kind::kTunnel;
  tunnel.match.proto = IpProto::kUdp;
  tunnel.match.dst_port = 443;
  tunnel.gateway = tb.addrs.cloud_gw;
  pvnc.policies.push_back(tunnel);
  ASSERT_TRUE(tb.deploy(pvnc).ok);

  tb.web->bind_udp(443, [&](Ipv4Addr src, Port sport, Port dport,
                            const Bytes& b) {
    tb.web->send_udp(src, dport, sport, b);  // echo
  });
  bool reply = false;
  tb.client->bind_udp(5555, [&](Ipv4Addr, Port, Port, const Bytes&) {
    reply = true;
  });
  tb.client->send_udp(tb.addrs.web, 5555, 443, Bytes(32, 7));
  tb.net.sim().run_until(tb.net.sim().now() + seconds(10));
  EXPECT_TRUE(reply);
  EXPECT_EQ(tb.cloud_gw->reencapsulated(), 1u);
  EXPECT_EQ(tb.esp_decap_proc->auth_failures(), 0u);
}

TEST(E2E, ReplicaSelectorSteersCdnLookups) {
  Testbed tb;
  Pvnc pvnc;
  pvnc.name = "alice-phone";
  pvnc.chain.push_back(PvncModule{"replica-selector", {}});
  ASSERT_TRUE(tb.deploy(pvnc).ok);

  // Authoritative DNS hands out the far replica (video, 90 ms); the PVN
  // rewrites to the near one (web, 20 ms).
  StubResolver stub(*tb.client, {tb.addrs.dns});
  DnsResult result;
  stub.resolve("cdn.example", [&](const DnsResult& r) { result = r; });
  tb.net.sim().run_until(tb.net.sim().now() + seconds(10));
  EXPECT_EQ(result.status, DnsResult::Status::kOk);
  EXPECT_EQ(result.addr, tb.addrs.web);  // steered to the near replica
}

// --- Anycast discovery across providers -------------------------------------------

TEST(E2E, AnycastDiscoveryCollectsOffersAndPicksCheapest) {
  // Two PVN-capable networks reachable through an exchange router. The
  // client floods its DM to the anycast address; both answer; the client
  // deploys to the cheaper one.
  Network net;
  auto& client = net.add_node<Host>("client", Ipv4Addr(10, 0, 0, 2));
  auto& exchange = net.add_node<Router>("exchange");
  auto& control_a = net.add_node<Host>("control-a", Ipv4Addr(20, 0, 0, 5));
  auto& control_b = net.add_node<Host>("control-b", Ipv4Addr(30, 0, 0, 5));
  auto& sw = net.add_node<SdnSwitch>("sw-x", 2);
  net.connect(client, exchange);      // exch p0
  net.connect(exchange, control_a);   // exch p1
  net.connect(exchange, control_b);   // exch p2
  net.connect(sw, exchange);          // unused dataplane placeholder
  exchange.add_route(*Prefix::parse("10.0.0.0/8"), 0);
  exchange.add_route(*Prefix::parse("20.0.0.0/8"), 1);
  exchange.add_route(*Prefix::parse("30.0.0.0/8"), 2);
  exchange.add_anycast_port(1);
  exchange.add_anycast_port(2);

  StoreEnvironment env;
  env.pii_patterns = {"imei="};
  auto store = make_standard_store(env);
  MboxHost mbox_a(net.sim()), mbox_b(net.sim());
  Controller ctrl(net.sim());
  ctrl.manage(sw);
  Ledger ledger;
  ServerConfig cfg_a;
  cfg_a.switch_name = "sw-x";
  cfg_a.network_name = "net-a";
  cfg_a.price_multiplier = 3.0;  // expensive
  ServerConfig cfg_b = cfg_a;
  cfg_b.network_name = "net-b";
  cfg_b.price_multiplier = 1.0;  // cheap
  DeploymentServer server_a(control_a, store, mbox_a, ctrl, ledger, cfg_a);
  DeploymentServer server_b(control_b, store, mbox_b, ctrl, ledger, cfg_b);

  Pvnc pvnc;
  pvnc.name = "alice-phone";
  pvnc.chain.push_back(PvncModule{"pii-detector", {}});

  PvnClient agent(client, pvnc);
  DeployOutcome outcome;
  agent.discover_and_deploy(kPvnAnycast,
                            [&](const DeployOutcome& o) { outcome = o; });
  net.sim().run_until(seconds(30));
  ASSERT_TRUE(outcome.ok) << outcome.failure;
  EXPECT_EQ(outcome.offers_received, 2);
  EXPECT_DOUBLE_EQ(outcome.paid, 1.0);  // picked the cheap provider
  EXPECT_EQ(server_b.deployments_active(), 1u);
  EXPECT_EQ(server_a.deployments_active(), 0u);
}

// --- PVNC by cloud URI -----------------------------------------------------------------

TEST(E2E, PvncFetchedFromCloudUri) {
  Testbed tb;
  // Publish the PVNC object in "cloud storage" (an HTTP path on web).
  const Pvnc pvnc = tb.standard_pvnc();
  const Bytes object = pvnc.encode();
  tb.web_http->set_handler([object](const HttpRequest& req) {
    if (req.path == "/pvnc/alice-phone") {
      HttpResponse resp;
      resp.body = object;
      resp.set_header("Content-Type", "application/x-pvnc");
      return resp;
    }
    return synthesize_response(req);
  });

  ClientConfig ccfg;
  ccfg.pvnc_uri = "pvnc://" + tb.addrs.web.to_string() + "/pvnc/alice-phone";
  const DeployOutcome out = tb.deploy(pvnc, ccfg);
  ASSERT_TRUE(out.ok) << out.failure;
  EXPECT_EQ(tb.server->deployments_active(), 1u);
  // The fetched object really was deployed: all four modules live.
  EXPECT_EQ(tb.mbox_host->instances(), 4);
}

TEST(E2E, UnreachableUriNacks) {
  Testbed tb;
  ClientConfig ccfg;
  ccfg.pvnc_uri = "pvnc://203.0.113.99/pvnc/missing";  // no such host
  ccfg.deploy_timeout = seconds(10);
  const DeployOutcome out = tb.deploy(tb.standard_pvnc(), ccfg);
  EXPECT_FALSE(out.ok);
}

TEST(E2E, MalformedUriNacks) {
  Testbed tb;
  ClientConfig ccfg;
  ccfg.pvnc_uri = "http://not-a-pvnc-uri/x";
  const DeployOutcome out = tb.deploy(tb.standard_pvnc(), ccfg);
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.failure.find("malformed"), std::string::npos);
}

TEST(E2E, UriDeploymentRestrictedToProviderPolicy) {
  TestbedConfig cfg;
  cfg.allowed_modules = {"pii-detector", "tracker-blocker"};
  Testbed tb(cfg);
  const Pvnc pvnc = tb.standard_pvnc();
  const Bytes object = pvnc.encode();
  tb.web_http->set_handler([object](const HttpRequest& req) {
    HttpResponse resp;
    resp.body = object;
    (void)req;
    return resp;
  });
  ClientConfig ccfg;
  ccfg.pvnc_uri = "pvnc://" + tb.addrs.web.to_string() + "/pvnc/alice-phone";
  const DeployOutcome out = tb.deploy(pvnc, ccfg);
  ASSERT_TRUE(out.ok) << out.failure;
  // Only the allowed subset of the cloud object was instantiated.
  EXPECT_EQ(tb.mbox_host->instances(), 2);
}

// --- Multi-device --------------------------------------------------------------------

TEST(E2E, TwoDevicesDeployIndependentPvns) {
  Testbed tb;
  // Second device behind a new switch port with its own infra routing.
  auto& client2 = tb.net.add_node<Host>("client2", Ipv4Addr(10, 0, 0, 3));
  tb.net.connect(*tb.access_sw, client2, LinkParams{});  // switch port 3
  FlowRule to_client2;
  to_client2.priority = 2;  // above the /24 infra rule
  to_client2.match.dst = Prefix{client2.addr(), 32};
  to_client2.cookie = "infra";
  to_client2.actions.push_back(ActOutput{3});
  tb.access_sw->table(0).add(to_client2);

  // The server learns each device's port.
  ServerConfig scfg;
  scfg.switch_name = Testbed::kSwitchName;
  scfg.client_port_for = [&](Ipv4Addr device) {
    return device == client2.addr() ? 3 : 0;
  };
  tb.server.reset();
  auto server = std::make_unique<DeploymentServer>(
      *tb.control, *tb.store, *tb.mbox_host, *tb.controller, *tb.ledger, scfg);

  // Both devices deploy the same (shared) PVNC under their own names.
  Pvnc alice;
  alice.name = "alice-phone";
  alice.chain.push_back(PvncModule{"tracker-blocker", {}});
  Pvnc bob = alice;
  bob.name = "bob-laptop";

  PvnClient agent_a(*tb.client, alice);
  PvnClient agent_b(client2, bob);
  DeployOutcome out_a, out_b;
  agent_a.discover_and_deploy(tb.addrs.control,
                              [&](const DeployOutcome& o) { out_a = o; });
  agent_b.discover_and_deploy(tb.addrs.control,
                              [&](const DeployOutcome& o) { out_b = o; });
  tb.net.sim().run_until(tb.net.sim().now() + seconds(30));
  ASSERT_TRUE(out_a.ok) << out_a.failure;
  ASSERT_TRUE(out_b.ok) << out_b.failure;
  EXPECT_EQ(server->deployments_active(), 2u);

  // Each device's tracker beacons are blocked by its own chain; isolation:
  // Bob's chain never sees Alice's packets.
  const std::uint64_t tracker_before = tb.tracker_http->requests_served();
  TelemetryEmitter beacon_a(*tb.client, tb.addrs.tracker, 80, {});
  TelemetryEmitter beacon_b(client2, tb.addrs.tracker, 80, {});
  beacon_a.start(1, milliseconds(10));
  beacon_b.start(1, milliseconds(10));
  tb.net.sim().run_until(tb.net.sim().now() + seconds(30));
  EXPECT_EQ(tb.tracker_http->requests_served(), tracker_before);

  Chain* chain_a = tb.mbox_host->chain(out_a.chain_id);
  Chain* chain_b = tb.mbox_host->chain(out_b.chain_id);
  ASSERT_NE(chain_a, nullptr);
  ASSERT_NE(chain_b, nullptr);
  EXPECT_GT(chain_a->packets(), 0u);
  EXPECT_GT(chain_b->packets(), 0u);
}

// --- Protocol failure injection -----------------------------------------------------

TEST(E2E, OfferExpiryRejectedByClient) {
  TestbedConfig cfg;
  Testbed tb(cfg);
  // The server's offers expire almost immediately; the client dawdles.
  tb.server.reset();
  ServerConfig scfg;
  scfg.switch_name = Testbed::kSwitchName;
  scfg.offer_ttl = milliseconds(1);
  auto server = std::make_unique<DeploymentServer>(
      *tb.control, *tb.store, *tb.mbox_host, *tb.controller, *tb.ledger, scfg);
  ClientConfig ccfg;
  ccfg.offer_wait = milliseconds(500);  // far past expiry
  const DeployOutcome out = tb.deploy(tb.standard_pvnc(), ccfg);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.failure, "no acceptable offer");
}

TEST(E2E, DeployTimeoutWhenServerGoesSilent) {
  Testbed tb;
  tb.server->drop_deploy_requests(true);
  ClientConfig ccfg;
  ccfg.deploy_timeout = seconds(2);
  const DeployOutcome out = tb.deploy(tb.standard_pvnc(), ccfg);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.failure, "deploy timeout");
  EXPECT_EQ(tb.server->deployments_active(), 0u);
}

TEST(E2E, LossyControlChannelStillDeploysOrFailsCleanly) {
  // 20% loss on the access link: discovery may need luck, but the client
  // must end in a definite state either way.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    TestbedConfig cfg;
    cfg.seed = seed;
    cfg.access.loss = 0.2;
    Testbed tb(cfg);
    const DeployOutcome out = tb.deploy(tb.standard_pvnc());
    if (out.ok) {
      EXPECT_EQ(tb.server->deployments_active(), 1u);
    } else {
      EXPECT_FALSE(out.failure.empty());
    }
  }
}

// --- Property: format->parse->deploy round trips for assorted PVNCs ---------------

class PvncDeployProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(PvncDeployProperty, TextConfigDeploysEndToEnd) {
  const auto parsed = parse_pvnc(GetParam());
  ASSERT_TRUE(std::holds_alternative<Pvnc>(parsed));
  const Pvnc pvnc = std::get<Pvnc>(parsed);
  // Round-trip through the canonical formatter.
  const auto reparsed = parse_pvnc(format_pvnc(pvnc));
  ASSERT_TRUE(std::holds_alternative<Pvnc>(reparsed));
  EXPECT_EQ(std::get<Pvnc>(reparsed), pvnc);

  Testbed tb;
  const DeployOutcome out = tb.deploy(pvnc);
  EXPECT_TRUE(out.ok) << out.failure;
  // And traffic still flows.
  HttpClient http(*tb.client);
  bool ok = false;
  http.fetch(tb.addrs.web, 80, "/bytes/2000",
             [&](const HttpResponse&, const FetchTiming& t) { ok = t.ok; });
  tb.net.sim().run_until(tb.net.sim().now() + seconds(60));
  EXPECT_TRUE(ok);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PvncDeployProperty,
    ::testing::Values(
        "pvnc \"alice-phone\" {\n}",
        "pvnc \"alice-phone\" {\n module classifier\n}",
        "pvnc \"alice-phone\" {\n module pii-detector action=scrub\n"
        " module tracker-blocker\n}",
        "pvnc \"alice-phone\" {\n policy drop proto=udp dport=1900\n"
        " policy mark dport=80 tos=16\n}",
        "pvnc \"alice-phone\" {\n module classifier\n"
        " policy rate tos=0x20 rate=2mbps\n}",
        "pvnc \"alice-phone\" {\n module tls-validator mode=warn\n"
        " module dns-validator mode=warn\n module malware-detector\n"
        " policy drop dst=66.6.6.6\n}"));

}  // namespace
}  // namespace pvn
