// Fault injection and control-plane resilience: the netsim fault injector,
// discovery/deploy retransmission over lossy links, idempotent deployment,
// deployment leases (renewal, expiry, memory reclamation), and failover to
// the device VPN tunnel when the PVN dies mid-session (§3.3).
#include <gtest/gtest.h>

#include <set>

#include "fixtures.h"
#include "netsim/faults.h"
#include "proto/http.h"
#include "proto/l4.h"
#include "testbed/testbed.h"

namespace pvn {
namespace {

using testing::DumbbellTopo;

// --- Fault injector ---------------------------------------------------------------

TEST(FaultInjector, LinkFlapDropsTrafficWhileDown) {
  DumbbellTopo topo;
  int received = 0;
  topo.server->bind_udp(7000, [&](Ipv4Addr, Port, Port, const Bytes&) {
    ++received;
  });
  FaultInjector faults(topo.net);
  faults.link_flap(*topo.access, seconds(2), seconds(3));  // down [2s, 5s)

  // One datagram per second for 10 s; those in the down window vanish.
  for (int i = 0; i < 10; ++i) {
    topo.net.sim().schedule_at(seconds(i) + milliseconds(500), [&] {
      topo.client->send_udp(topo.server->addr(), 7000, 7000, to_bytes("ping"));
    });
  }
  topo.net.sim().run();
  EXPECT_EQ(received, 7);  // sends at 2.5s, 3.5s, 4.5s lost
  ASSERT_EQ(faults.events().size(), 2u);
  EXPECT_EQ(faults.events()[0].kind, "link-down");
  EXPECT_EQ(faults.events()[0].at, seconds(2));
  EXPECT_EQ(faults.events()[1].kind, "link-up");
  EXPECT_EQ(faults.events()[1].at, seconds(5));
}

TEST(FaultInjector, NodeCrashDiscardsSendsAndDeliveries) {
  DumbbellTopo topo;
  int received = 0;
  topo.server->bind_udp(7000, [&](Ipv4Addr, Port, Port, const Bytes&) {
    ++received;
  });
  FaultInjector faults(topo.net);
  faults.node_crash(*topo.server, seconds(2), seconds(2));  // down [2s, 4s)
  for (int i = 0; i < 6; ++i) {
    topo.net.sim().schedule_at(seconds(i) + milliseconds(500), [&] {
      topo.client->send_udp(topo.server->addr(), 7000, 7000, to_bytes("ping"));
    });
  }
  topo.net.sim().run();
  EXPECT_EQ(received, 4);  // sends at 2.5s, 3.5s arrive at a dead node
  EXPECT_GT(topo.server->dropped_while_down(), 0u);
}

TEST(FaultInjector, LossBurstRestoresThePreviousLossRate) {
  LinkParams lossy;
  lossy.loss = 0.05;
  DumbbellTopo topo(lossy);
  FaultInjector faults(topo.net);
  faults.loss_burst(*topo.access, seconds(1), seconds(1), 1.0);

  int received = 0;
  topo.server->bind_udp(7000, [&](Ipv4Addr, Port, Port, const Bytes&) {
    ++received;
  });
  // Inside the burst nothing gets through.
  for (int i = 0; i < 20; ++i) {
    topo.net.sim().schedule_at(seconds(1) + milliseconds(10 * i + 5), [&] {
      topo.client->send_udp(topo.server->addr(), 7000, 7000, to_bytes("x"));
    });
  }
  topo.net.sim().run_until(seconds(2));
  EXPECT_EQ(received, 0);
  // After the burst the link is back to its configured 5% loss.
  for (int i = 0; i < 100; ++i) {
    topo.net.sim().schedule_at(seconds(3) + milliseconds(10 * i), [&] {
      topo.client->send_udp(topo.server->addr(), 7000, 7000, to_bytes("x"));
    });
  }
  topo.net.sim().run();
  EXPECT_GT(received, 50);
}

TEST(FaultInjector, RandomFlapsAreDeterministicPerSeed) {
  std::vector<std::vector<FaultEvent>> timelines;
  for (int run = 0; run < 2; ++run) {
    DumbbellTopo topo({}, {}, /*seed=*/42);
    FaultInjector faults(topo.net);
    faults.random_flaps(*topo.access, seconds(1), seconds(60), seconds(5),
                        seconds(1));
    topo.net.sim().run();
    timelines.push_back(faults.events());
  }
  ASSERT_EQ(timelines[0].size(), timelines[1].size());
  EXPECT_GT(timelines[0].size(), 2u);
  for (std::size_t i = 0; i < timelines[0].size(); ++i) {
    EXPECT_EQ(timelines[0][i].at, timelines[1][i].at);
    EXPECT_EQ(timelines[0][i].kind, timelines[1][i].kind);
  }
}

TEST(FaultInjector, CrashAndRestartTakesTheNodeDownThenBack) {
  DumbbellTopo topo;
  int received = 0;
  topo.server->bind_udp(7000, [&](Ipv4Addr, Port, Port, const Bytes&) {
    ++received;
  });
  FaultInjector faults(topo.net);
  // Down for [1s, 3s): the transient flavour of crash_node/restore_node.
  topo.net.sim().schedule_at(seconds(1), [&] {
    faults.crash_and_restart(*topo.server, seconds(2));
  });
  for (int i = 0; i < 6; ++i) {
    topo.net.sim().schedule_at(seconds(i) + milliseconds(500), [&] {
      topo.client->send_udp(topo.server->addr(), 7000, 7000, to_bytes("ping"));
    });
  }
  topo.net.sim().run();
  EXPECT_EQ(received, 4);  // sends at 1.5s and 2.5s hit a dead node
  ASSERT_EQ(faults.events().size(), 2u);
  EXPECT_EQ(faults.events()[0].kind, "node-crash");
  EXPECT_EQ(faults.events()[0].at, seconds(1));
  EXPECT_EQ(faults.events()[1].kind, "node-restart");
  EXPECT_EQ(faults.events()[1].at, seconds(3));
}

TEST(FaultInjector, CrashAndRestartCallbackFormDrivesMboxRecovery) {
  // The callback form injects the same fault into components that are not
  // netsim Nodes — here the middlebox compute pool — and records both
  // transitions, so a full failover + recovery runs from one injection.
  TestbedConfig cfg;
  cfg.lease_duration = seconds(2);
  Testbed tb(cfg);
  ClientConfig ccfg;
  ccfg.constraints.required_modules = {"tls-validator"};
  ccfg.session.fallback_retry = seconds(1);
  PvnClient agent(*tb.client, tb.standard_pvnc(), ccfg);
  agent.set_fallback(tb.device_tunnel.get());
  agent.start_session(tb.addrs.control);
  tb.net.sim().run_until(seconds(1));
  ASSERT_EQ(agent.state(), SessionState::kActive);

  tb.net.sim().schedule_at(seconds(2), [&] {
    tb.faults->crash_and_restart("mbox-pool", seconds(5),
                                 [&] { tb.mbox_host->crash(); },
                                 [&] { tb.mbox_host->restart(); });
  });
  tb.net.sim().run_until(seconds(5));
  EXPECT_EQ(agent.state(), SessionState::kFallback);
  EXPECT_EQ(agent.failovers(), 1u);

  tb.net.sim().run_until(seconds(20));
  EXPECT_EQ(agent.state(), SessionState::kActive);
  EXPECT_EQ(agent.recoveries(), 1u);
  ASSERT_EQ(tb.faults->events().size(), 2u);
  EXPECT_EQ(tb.faults->events()[0].kind, "node-crash");
  EXPECT_EQ(tb.faults->events()[0].target, "mbox-pool");
  EXPECT_EQ(tb.faults->events()[1].kind, "node-restart");
  EXPECT_EQ(tb.faults->events()[1].at, seconds(7));
}

TEST(FaultInjector, PartitionTakesAllListedLinksDown) {
  DumbbellTopo topo;
  FaultInjector faults(topo.net);
  faults.partition({topo.access, topo.core}, seconds(1), seconds(2));
  topo.net.sim().run_until(seconds(2));
  EXPECT_FALSE(topo.access->is_up());
  EXPECT_FALSE(topo.core->is_up());
  topo.net.sim().run();
  EXPECT_TRUE(topo.access->is_up());
  EXPECT_TRUE(topo.core->is_up());
}

// --- Acceptance (a): retransmission beats a lossy control channel -------------------

TEST(Resilience, DeploySucceedsOver30PercentLossViaRetransmission) {
  TestbedConfig cfg;
  cfg.access.loss = 0.30;
  cfg.seed = 7;
  Testbed tb(cfg);
  ClientConfig ccfg;
  ccfg.retry.max_discovery_rounds = 8;
  ccfg.retry.max_deploy_attempts = 8;
  ccfg.deploy_timeout = seconds(20);
  const DeployOutcome out = tb.deploy(tb.standard_pvnc(), ccfg);
  ASSERT_TRUE(out.ok) << out.failure;
  EXPECT_EQ(tb.server->deployments_active(), 1u);
  // The win must come from retrying, not luck: across several seeds at 30%
  // loss at least one deployment needs more than one round or attempt.
  int retries_used = out.discovery_rounds - 1 + out.deploy_attempts - 1;
  for (std::uint64_t seed = 8; seed <= 12; ++seed) {
    TestbedConfig c2 = cfg;
    c2.seed = seed;
    Testbed tb2(c2);
    const DeployOutcome o2 = tb2.deploy(tb2.standard_pvnc(), ccfg);
    EXPECT_TRUE(o2.ok) << "seed " << seed << ": " << o2.failure;
    retries_used += o2.discovery_rounds - 1 + o2.deploy_attempts - 1;
  }
  EXPECT_GT(retries_used, 0);
}

TEST(Resilience, HappyPathSendsNoRetransmissions) {
  Testbed tb;
  const DeployOutcome out = tb.deploy(tb.standard_pvnc());
  ASSERT_TRUE(out.ok) << out.failure;
  EXPECT_EQ(out.discovery_rounds, 1);
  EXPECT_EQ(out.deploy_attempts, 1);
}

// --- Idempotent deployment ----------------------------------------------------------

TEST(Resilience, DuplicateDeployRequestsDeployOnceAndReack) {
  Testbed tb;
  DeployRequest req;
  req.seq = 42;
  req.device_id = "alice-phone";
  req.pvnc = tb.standard_pvnc();
  req.payment = tb.store->price_of(req.pvnc.module_names());
  const Bytes wire = wrap(PvnMsgType::kDeployRequest, req.encode());

  int acks = 0;
  tb.client->bind_udp(4000, [&](Ipv4Addr, Port, Port, const Bytes& payload) {
    const auto msg = unwrap(payload);
    if (msg && msg->first == PvnMsgType::kDeployAck) ++acks;
  });
  // Two copies in flight at once: the second must not deploy a second chain.
  tb.client->send_udp(tb.addrs.control, 4000, kPvnPort, wire);
  tb.client->send_udp(tb.addrs.control, 4000, kPvnPort, wire);
  tb.net.sim().run();
  EXPECT_EQ(tb.server->deployments_total(), 1u);
  EXPECT_EQ(acks, 1);
  EXPECT_EQ(tb.server->duplicate_deploys(), 1u);

  // A late retransmission (the ack could have been lost) gets the cached
  // ack back instead of a fresh deployment.
  tb.client->send_udp(tb.addrs.control, 4000, kPvnPort, wire);
  tb.net.sim().run();
  EXPECT_EQ(tb.server->deployments_total(), 1u);
  EXPECT_EQ(acks, 2);
  EXPECT_EQ(tb.server->duplicate_deploys(), 2u);
}

// --- Offer expiry between collection and deployment ---------------------------------

TEST(Resilience, OfferExpiringBeforeRetransmitRestartsDiscovery) {
  Testbed tb;
  // Offers outlive the collection window but not the deploy retransmission
  // timeout; the server goes silent on deploys, so every retransmission
  // finds its offer expired and must restart discovery instead.
  tb.server.reset();
  ServerConfig scfg;
  scfg.switch_name = Testbed::kSwitchName;
  scfg.offer_ttl = milliseconds(600);
  auto server = std::make_unique<DeploymentServer>(
      *tb.control, *tb.store, *tb.mbox_host, *tb.controller, *tb.ledger, scfg);
  server->drop_deploy_requests(true);

  ClientConfig ccfg;
  ccfg.retry.max_discovery_rounds = 2;
  ccfg.retry.deploy_rto = milliseconds(400);
  const DeployOutcome out = tb.deploy(tb.standard_pvnc(), ccfg);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.failure, "offer expired before deployment");
  // The expiry triggered a fresh discovery round (new offer), not a blind
  // retransmission against the stale one.
  EXPECT_EQ(out.discovery_rounds, 2);
}

// --- Leases -------------------------------------------------------------------------

TEST(Resilience, DeployAckCarriesTheLease) {
  TestbedConfig cfg;
  cfg.lease_duration = seconds(5);
  Testbed tb(cfg);
  const DeployOutcome out = tb.deploy(tb.standard_pvnc());
  ASSERT_TRUE(out.ok) << out.failure;
  EXPECT_EQ(out.lease_duration, seconds(5));
}

// Acceptance (c): a client that crashes (never renews) has its lease
// expired and the middlebox memory returns to the pre-deploy value.
TEST(Resilience, CrashedClientLeaseExpiresAndMemoryIsReclaimed) {
  TestbedConfig cfg;
  cfg.lease_duration = seconds(2);
  Testbed tb(cfg);
  const std::int64_t memory_before = tb.mbox_host->memory_in_use();

  PvnClient agent(*tb.client, tb.standard_pvnc());
  DeployOutcome out;
  agent.discover_and_deploy(tb.addrs.control, [&](const DeployOutcome& o) {
    out = o;
  });
  tb.net.sim().run_until(seconds(1));
  ASSERT_TRUE(out.ok) << out.failure;
  EXPECT_EQ(tb.server->deployments_active(), 1u);
  EXPECT_GT(tb.mbox_host->memory_in_use(), memory_before);

  // The client never renews (a one-shot agent models a crashed device).
  tb.net.sim().run_until(seconds(8));
  EXPECT_EQ(tb.server->leases_expired(), 1u);
  EXPECT_EQ(tb.server->deployments_active(), 0u);
  EXPECT_EQ(tb.mbox_host->memory_in_use(), memory_before);
}

// Regression: renewal periods must be jittered per session. Without jitter
// a fleet of clients deployed in the same instant renews in lockstep
// forever — a thundering herd at the deployment server every period.
TEST(Resilience, RenewalsAreJitteredNotLockstep) {
  TestbedConfig cfg;
  cfg.lease_duration = seconds(3);  // nominal renewal period: 1 s
  Testbed tb(cfg);
  std::vector<SimTime> renew_times;
  tb.access_link->add_tap([&](const Packet& pkt, const Node&, const Node&) {
    if (pkt.ip.dst != tb.addrs.control) return;
    const auto dgram = parse_udp(pkt.l4);
    if (!dgram || dgram->hdr.dst_port != kPvnPort) return;
    const auto msg = unwrap(dgram->payload);
    if (msg && msg->first == PvnMsgType::kLeaseRenew) {
      renew_times.push_back(tb.net.sim().now());
    }
  });
  PvnClient agent(*tb.client, tb.standard_pvnc());
  agent.start_session(tb.addrs.control);
  tb.net.sim().run_until(seconds(15));
  ASSERT_GE(renew_times.size(), 8u);

  const SimDuration nominal = cfg.lease_duration / 3;
  std::set<SimDuration> gaps;
  for (std::size_t i = 1; i < renew_times.size(); ++i) {
    const SimDuration gap = renew_times[i] - renew_times[i - 1];
    gaps.insert(gap);
    // Each period is drawn from [1-j, 1+j] around the nominal (j = 0.1).
    EXPECT_GE(gap, nominal * 85 / 100);
    EXPECT_LE(gap, nominal * 115 / 100);
  }
  // The periods differ from each other: two sessions started in the same
  // tick drift apart instead of renewing in the same instant forever.
  EXPECT_GT(gaps.size(), 1u);
}

TEST(Resilience, RenewingSessionKeepsTheLeaseAlive) {
  TestbedConfig cfg;
  cfg.lease_duration = seconds(1);
  Testbed tb(cfg);
  PvnClient agent(*tb.client, tb.standard_pvnc());
  agent.start_session(tb.addrs.control);
  tb.net.sim().run_until(seconds(6));
  EXPECT_EQ(agent.state(), SessionState::kActive);
  EXPECT_EQ(tb.server->deployments_active(), 1u);
  EXPECT_EQ(tb.server->leases_expired(), 0u);
  EXPECT_GE(agent.renews_acked(), 3u);
  agent.stop_session();
  // With the session stopped the lease runs out and the server reclaims.
  tb.net.sim().run_until(seconds(12));
  EXPECT_EQ(tb.server->deployments_active(), 0u);
  EXPECT_EQ(tb.server->leases_expired(), 1u);
}

// --- Acceptance (b): MboxHost crash -> tunnel failover -> recovery ------------------

TEST(Resilience, MboxCrashFailsOverToTunnelAndRecoversOnRestart) {
  TestbedConfig cfg;
  cfg.lease_duration = seconds(2);
  Testbed tb(cfg);

  ClientConfig ccfg;
  // tls-validator is a hard constraint: losing it cannot be degraded
  // around, so the crash forces a full failover.
  ccfg.constraints.required_modules = {"tls-validator"};
  ccfg.session.fallback_retry = seconds(1);
  PvnClient agent(*tb.client, tb.standard_pvnc(), ccfg);
  agent.set_fallback(tb.device_tunnel.get());
  agent.start_session(tb.addrs.control);

  tb.net.sim().run_until(seconds(1));
  ASSERT_EQ(agent.state(), SessionState::kActive);
  EXPECT_FALSE(tb.device_tunnel->active());

  // Mid-session middlebox host crash.
  const SimTime crash_at = seconds(2);
  tb.net.sim().schedule_at(crash_at, [&] { tb.mbox_host->crash(); });
  // Within one lease period the client must have noticed (refused or
  // missed renewal) and switched to the VPN tunnel.
  tb.net.sim().run_until(crash_at + cfg.lease_duration);
  EXPECT_EQ(agent.state(), SessionState::kFallback);
  EXPECT_TRUE(tb.device_tunnel->active());
  EXPECT_EQ(agent.failovers(), 1u);
  EXPECT_EQ(tb.server->chains_lost(), 1u);

  // Traffic still flows — through the cloud gateway.
  HttpClient http(*tb.client);
  bool fetched = false;
  http.fetch(tb.addrs.web, 80, "/bytes/20000",
             [&](const HttpResponse&, const FetchTiming& t) { fetched = t.ok; });
  tb.net.sim().run_until(seconds(8));
  EXPECT_TRUE(fetched);
  EXPECT_GT(tb.device_tunnel->tunneled(), 0u);
  EXPECT_GT(tb.cloud_gw->decapsulated(), 0u);

  // The middlebox host comes back; the session rediscovers and returns to
  // the PVN path, dropping the tunnel.
  tb.net.sim().schedule_at(seconds(8), [&] { tb.mbox_host->restart(); });
  tb.net.sim().run_until(seconds(20));
  EXPECT_EQ(agent.state(), SessionState::kActive);
  EXPECT_FALSE(tb.device_tunnel->active());
  EXPECT_EQ(agent.recoveries(), 1u);
  EXPECT_EQ(tb.server->deployments_active(), 1u);

  // And the new chain actually processes traffic again.
  bool fetched2 = false;
  http.fetch(tb.addrs.web, 80, "/bytes/20000",
             [&](const HttpResponse&, const FetchTiming& t) { fetched2 = t.ok; });
  tb.net.sim().run_until(seconds(30));
  EXPECT_TRUE(fetched2);
  Chain* chain = tb.mbox_host->chain(agent.chain_id());
  ASSERT_NE(chain, nullptr);
  EXPECT_GT(chain->packets(), 0u);
}

// --- Graceful degradation: optional modules bypass a dead chain ---------------------

TEST(Resilience, OptionalOnlyDeploymentDegradesInsteadOfTearingDown) {
  TestbedConfig cfg;
  cfg.lease_duration = seconds(2);
  Testbed tb(cfg);

  ClientConfig ccfg;  // no required modules: everything is optional
  PvnClient agent(*tb.client, tb.standard_pvnc(), ccfg);
  agent.set_fallback(tb.device_tunnel.get());
  agent.start_session(tb.addrs.control);
  tb.net.sim().run_until(seconds(1));
  ASSERT_EQ(agent.state(), SessionState::kActive);

  tb.net.sim().schedule_at(seconds(2), [&] { tb.mbox_host->crash(); });
  tb.net.sim().run_until(seconds(6));
  // The deployment survives in degraded mode: no failover, chain-divert
  // rules removed, lease renewals still succeed and report the loss.
  EXPECT_EQ(agent.state(), SessionState::kActive);
  EXPECT_FALSE(tb.device_tunnel->active());
  EXPECT_EQ(agent.failovers(), 0u);
  EXPECT_EQ(tb.server->degraded_deployments(), 1u);
  EXPECT_EQ(tb.server->deployments_active(), 1u);
  EXPECT_FALSE(agent.degraded_modules().empty());

  // Traffic flows past the dead chain (no divert rules remain).
  HttpClient http(*tb.client);
  bool fetched = false;
  http.fetch(tb.addrs.web, 80, "/bytes/20000",
             [&](const HttpResponse&, const FetchTiming& t) { fetched = t.ok; });
  tb.net.sim().run_until(seconds(12));
  EXPECT_TRUE(fetched);
  for (const FlowRule& rule : tb.access_sw->table(0).rules()) {
    for (const Action& action : rule.actions) {
      if (const auto* mbox = std::get_if<ActMbox>(&action)) {
        EXPECT_EQ(mbox->chain_id, "esp-decap");  // only the infra rule
      }
    }
  }
}

// --- Stale-server detection via lease refusal ---------------------------------------

TEST(Resilience, ServerRestartRefusesUnknownLeaseAndClientFailsOver) {
  TestbedConfig cfg;
  cfg.lease_duration = seconds(2);
  Testbed tb(cfg);
  PvnClient agent(*tb.client, tb.standard_pvnc());
  agent.set_fallback(tb.device_tunnel.get());
  agent.start_session(tb.addrs.control);
  tb.net.sim().run_until(seconds(1));
  ASSERT_EQ(agent.state(), SessionState::kActive);

  // The access network's server loses all state (process restart). Destroy
  // the old instance first: its destructor unbinds the PVN port and a
  // replacement must bind after that, not before.
  tb.net.sim().schedule_at(seconds(2), [&] {
    tb.server.reset();
    ServerConfig scfg;
    scfg.switch_name = Testbed::kSwitchName;
    scfg.lease_duration = cfg.lease_duration;
    tb.server = std::make_unique<DeploymentServer>(
        *tb.control, *tb.store, *tb.mbox_host, *tb.controller, *tb.ledger,
        scfg);
  });
  // Next renewal is refused ("no such deployment") -> failover -> the
  // fallback rediscovery redeploys against the fresh server.
  tb.net.sim().run_until(seconds(20));
  EXPECT_EQ(agent.state(), SessionState::kActive);
  EXPECT_GE(agent.failovers(), 1u);
  EXPECT_GE(agent.recoveries(), 1u);
  EXPECT_EQ(tb.server->deployments_active(), 1u);
}

}  // namespace
}  // namespace pvn
