// Survivability layer (DESIGN.md "Survivability"): checkpoint -> restore ->
// replay equivalence, incremental checkpoints, the standby agent's rejection
// of corrupt/replayed transfers, warm-standby promotion on a primary mbox
// crash, and live migration between access networks with state handoff.
#include <gtest/gtest.h>

#include "mbox/checkpoint.h"
#include "mbox/inline_modules.h"
#include "testbed/roaming.h"
#include "testbed/testbed.h"

namespace pvn {
namespace {

// Deterministic traffic mix: classifiable HTTP-ish flows plus tracker hits.
std::vector<Packet> make_traffic(Network& net, Rng& rng, int n) {
  std::vector<Packet> out;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) {
      out.push_back(net.make_packet(
          Ipv4Addr(10, 0, 0, 2), Ipv4Addr(6, 6, 6, 6), IpProto::kTcp,
          to_bytes("GET /pixel?id=" + std::to_string(i))));
    } else {
      const bool video = rng.bernoulli(0.5);
      out.push_back(net.make_packet(
          Ipv4Addr(10, 0, 0, 2),
          Ipv4Addr(93, 184, 216,
                   static_cast<std::uint8_t>(rng.next_below(250))),
          IpProto::kTcp,
          to_bytes(std::string("HTTP/1.1 200 OK Content-Type: ") +
                   (video ? "video" : "text") + " #" + std::to_string(i))));
    }
  }
  return out;
}

struct StatefulChain {
  Classifier classifier{{{"Content-Type: video", 0x20},
                         {"Content-Type: text", 0x10}}};
  TrackerBlocker blocker{{Ipv4Addr(6, 6, 6, 6)}};
  Chain chain;

  explicit StatefulChain(const std::string& id) : chain(id, microseconds(45)) {
    chain.append(&classifier);
    chain.append(&blocker);
  }

  void feed(const std::vector<Packet>& traffic, std::size_t from,
            std::size_t to) {
    SimDuration delay = 0;
    for (std::size_t i = from; i < to; ++i) {
      (void)chain.process(traffic[i], 0, delay);
    }
  }
};

Classifier* find_classifier(Chain* chain) {
  if (chain == nullptr) return nullptr;
  for (Middlebox* m : chain->modules()) {
    if (m->name() == "classifier") return dynamic_cast<Classifier*>(m);
  }
  return nullptr;
}

// --- Property: checkpoint/restore/replay == uninterrupted execution ---------

class SurvivabilityProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SurvivabilityProperty, CheckpointRestoreReplayMatchesUninterrupted) {
  Rng rng(GetParam());
  Network net(GetParam());
  const std::vector<Packet> traffic = make_traffic(net, rng, 40);
  const std::size_t cut = 15 + rng.next_below(15);

  StatefulChain uninterrupted("chain:u");
  uninterrupted.feed(traffic, 0, traffic.size());

  StatefulChain primary("chain:p");
  primary.feed(traffic, 0, cut);
  const ChainCheckpoint ckpt =
      capture_chain(primary.chain, 1, static_cast<SimTime>(cut));

  // The checkpoint travels over the (simulated) wire; decode what arrives.
  const auto arrived = ChainCheckpoint::decode(ckpt.encode());
  ASSERT_TRUE(arrived.has_value());
  StatefulChain standby("chain:s");
  ASSERT_EQ(restore_chain(standby.chain, *arrived), 2u);
  standby.feed(traffic, cut, traffic.size());

  // Replaying the remainder on the restored chain lands in exactly the
  // state of the chain that never crashed.
  EXPECT_EQ(standby.classifier.serialize_state(),
            uninterrupted.classifier.serialize_state());
  EXPECT_EQ(standby.blocker.serialize_state(),
            uninterrupted.blocker.serialize_state());
  EXPECT_EQ(standby.classifier.flows_classified(),
            uninterrupted.classifier.flows_classified());
  EXPECT_EQ(standby.blocker.blocked(), uninterrupted.blocker.blocked());
  EXPECT_EQ(standby.classifier.packets_seen,
            uninterrupted.classifier.packets_seen);
  EXPECT_EQ(standby.blocker.packets_dropped,
            uninterrupted.blocker.packets_dropped);
}

TEST_P(SurvivabilityProperty, IncrementalCheckpointsOmitUnchangedModules) {
  Rng rng(GetParam());
  Network net(GetParam());
  StatefulChain primary("chain:inc");
  StatefulChain standby("chain:inc");

  std::map<std::string, Digest> digests;
  const std::vector<Packet> traffic = make_traffic(net, rng, 20);
  primary.feed(traffic, 0, traffic.size());
  // First capture against an empty digest map includes every module.
  const ChainCheckpoint full = capture_chain(primary.chain, 1, 0, &digests);
  ASSERT_EQ(full.modules.size(), 2u);
  ASSERT_EQ(restore_chain(standby.chain, full), 2u);

  // Classifiable-only traffic afterwards: the tracker blocker's state is
  // untouched, so the next incremental omits it.
  SimDuration delay = 0;
  Packet video = net.make_packet(
      Ipv4Addr(10, 0, 0, 2), Ipv4Addr(93, 184, 216, 252), IpProto::kTcp,
      to_bytes("HTTP/1.1 200 OK Content-Type: video fresh"));
  (void)primary.chain.process(video, 0, delay);
  const ChainCheckpoint incr = capture_chain(primary.chain, 2, 0, &digests);
  EXPECT_TRUE(incr.incremental);
  ASSERT_EQ(incr.modules.size(), 1u);
  EXPECT_EQ(incr.modules[0].module, "classifier");

  // Applying the incremental on top brings the classifier up to date and
  // leaves the blocker's previously restored state alone.
  ASSERT_EQ(restore_chain(standby.chain, incr), 1u);
  EXPECT_EQ(standby.classifier.serialize_state(),
            primary.classifier.serialize_state());
  EXPECT_EQ(standby.blocker.blocked(), primary.blocker.blocked());

  // Nothing changed since: the next incremental is empty.
  const ChainCheckpoint quiet = capture_chain(primary.chain, 3, 0, &digests);
  EXPECT_TRUE(quiet.modules.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SurvivabilityProperty,
                         ::testing::Values(41, 42, 43, 44));

// --- StandbyAgent: transfer validation --------------------------------------

TEST(Survivability, StandbyAgentAppliesValidAndRejectsCorruptTransfers) {
  TestbedConfig cfg;
  cfg.standby = true;
  Testbed tb(cfg);

  Rng rng(5);
  StatefulChain donor("c1");
  donor.feed(make_traffic(tb.net, rng, 12), 0, 12);

  StatefulChain replica_modules("c1");
  Chain& replica = tb.standby_mbox->create_chain("c1");
  replica.append(&replica_modules.classifier);
  replica.append(&replica_modules.blocker);

  const auto send_xfer = [&](std::uint32_t seq, Bytes ckpt,
                             const std::string& chain_id = "c1",
                             bool ok = true) {
    StateTransfer x;
    x.seq = seq;
    x.device_id = "alice-phone";
    x.chain_id = chain_id;
    x.ok = ok;
    x.checkpoint = std::move(ckpt);
    tb.control->send_udp(tb.addrs.standby, kPvnPort, kPvnStandbyPort,
                         wrap(PvnMsgType::kStateTransfer, x.encode()));
    tb.net.sim().run_until(tb.net.sim().now() + milliseconds(50));
  };

  // 1. A valid transfer applies and reproduces the donor's state.
  send_xfer(1, capture_chain(donor.chain, 1, 0).encode());
  EXPECT_EQ(tb.standby_agent->checkpoints_applied(), 1u);
  EXPECT_EQ(tb.standby_agent->checkpoints_rejected(), 0u);
  EXPECT_EQ(replica_modules.classifier.serialize_state(),
            donor.classifier.serialize_state());

  // 2. A duplicated/reordered datagram (same checkpoint seq) is rejected:
  // the standby never steps backwards.
  send_xfer(2, capture_chain(donor.chain, 1, 0).encode());
  EXPECT_EQ(tb.standby_agent->checkpoints_applied(), 1u);
  EXPECT_EQ(tb.standby_agent->checkpoints_rejected(), 1u);

  // 3. A bit-flipped checkpoint fails the digest and is dropped wholesale.
  Bytes flipped = capture_chain(donor.chain, 2, 0).encode();
  flipped[flipped.size() / 2] ^= 0x40;
  send_xfer(3, std::move(flipped));
  EXPECT_EQ(tb.standby_agent->checkpoints_rejected(), 2u);

  // 4. Truncation in transit likewise.
  Bytes truncated = capture_chain(donor.chain, 3, 0).encode();
  truncated.resize(truncated.size() - 3);
  send_xfer(4, std::move(truncated));
  EXPECT_EQ(tb.standby_agent->checkpoints_rejected(), 3u);

  // 5. A checkpoint for a different chain than the transfer claims.
  send_xfer(5, capture_chain(donor.chain, 4, 0).encode(), "other-chain");
  EXPECT_EQ(tb.standby_agent->checkpoints_rejected(), 4u);

  // 6. ok=false transfers (the source had nothing) are ignored silently.
  send_xfer(6, capture_chain(donor.chain, 5, 0).encode(), "c1", false);
  EXPECT_EQ(tb.standby_agent->checkpoints_applied(), 1u);
  EXPECT_EQ(tb.standby_agent->checkpoints_rejected(), 4u);

  // Through all of it the replica kept the one valid snapshot.
  EXPECT_EQ(replica_modules.classifier.serialize_state(),
            donor.classifier.serialize_state());
  EXPECT_GT(tb.standby_agent->bytes_received(), 0u);
}

// --- Warm standby: promotion on primary crash --------------------------------

Pvnc stateful_pvnc() {
  Pvnc pvnc;
  pvnc.name = "alice-phone";
  pvnc.chain.push_back(PvncModule{"tls-validator", {{"mode", "block"}}});
  pvnc.chain.push_back(PvncModule{"classifier", {}});
  pvnc.chain.push_back(PvncModule{"tracker-blocker", {}});
  return pvnc;
}

TEST(Survivability, PrimaryCrashPromotesStandbyWithoutLosingTheSession) {
  TestbedConfig cfg;
  cfg.standby = true;
  cfg.lease_duration = seconds(2);
  cfg.checkpoint_interval = milliseconds(100);
  Testbed tb(cfg);

  ClientConfig ccfg;
  // tls-validator is required: without the standby this crash would force
  // a failover (resilience_test.cc covers that path).
  ccfg.constraints.required_modules = {"tls-validator"};
  PvnClient agent(*tb.client, stateful_pvnc(), ccfg);
  agent.set_fallback(tb.device_tunnel.get());
  agent.start_session(tb.addrs.control);

  tb.net.sim().run_until(seconds(1));
  ASSERT_EQ(agent.state(), SessionState::kActive);
  EXPECT_EQ(tb.server->standbys_ready(), 1u);

  // Build per-flow classifier state on the primary chain.
  for (int i = 0; i < 6; ++i) {
    tb.client->send_udp(tb.addrs.web, static_cast<Port>(5000 + i), 80,
                        to_bytes("HTTP/1.1 200 OK Content-Type: video #" +
                                 std::to_string(i)));
  }
  tb.net.sim().run_until(seconds(3));
  Classifier* primary_cls = find_classifier(tb.mbox_host->chain(agent.chain_id()));
  ASSERT_NE(primary_cls, nullptr);
  const std::uint64_t flows_before = primary_cls->flows_classified();
  EXPECT_GT(flows_before, 0u);
  // Checkpoints streamed the state to the standby before the crash.
  EXPECT_GT(tb.server->checkpoints_streamed(), 0u);
  EXPECT_GT(tb.standby_agent->checkpoints_applied(), 0u);

  tb.net.sim().schedule_at(seconds(3), [&] { tb.mbox_host->crash(); });
  tb.net.sim().run_until(seconds(4));

  // The standby took over: no failover, no degradation, session untouched.
  EXPECT_EQ(tb.server->standby_promotions(), 1u);
  EXPECT_EQ(tb.controller->promotions(), 1u);
  EXPECT_EQ(agent.state(), SessionState::kActive);
  EXPECT_EQ(agent.failovers(), 0u);
  EXPECT_FALSE(tb.device_tunnel->active());
  EXPECT_EQ(tb.server->deployments_active(), 1u);
  EXPECT_EQ(tb.server->degraded_deployments(), 0u);
  EXPECT_EQ(tb.server->chains_lost(), 0u);

  // The promoted chain carries the streamed per-flow state...
  Chain* promoted = tb.standby_mbox->chain(agent.chain_id());
  ASSERT_NE(promoted, nullptr);
  Classifier* standby_cls = find_classifier(promoted);
  ASSERT_NE(standby_cls, nullptr);
  EXPECT_EQ(standby_cls->flows_classified(), flows_before);

  // ...and processes new traffic diverted by the re-pointed flow rules.
  const std::uint64_t processed_before = promoted->packets();
  tb.client->send_udp(tb.addrs.web, 6000, 80,
                      to_bytes("HTTP/1.1 200 OK Content-Type: video new"));
  tb.net.sim().run_until(seconds(6));
  EXPECT_GT(promoted->packets(), processed_before);

  // Renewals keep succeeding against the promoted deployment.
  const std::uint64_t acked_at_crash = agent.renews_acked();
  tb.net.sim().run_until(seconds(10));
  EXPECT_EQ(agent.state(), SessionState::kActive);
  EXPECT_GT(agent.renews_acked(), acked_at_crash);
}

TEST(Survivability, StandbyCrashLeavesTunnelFailoverAsLastResort) {
  TestbedConfig cfg;
  cfg.standby = true;
  cfg.lease_duration = seconds(2);
  cfg.checkpoint_interval = milliseconds(100);
  Testbed tb(cfg);

  ClientConfig ccfg;
  ccfg.constraints.required_modules = {"tls-validator"};
  ccfg.session.fallback_retry = seconds(1);
  PvnClient agent(*tb.client, stateful_pvnc(), ccfg);
  agent.set_fallback(tb.device_tunnel.get());
  agent.start_session(tb.addrs.control);
  tb.net.sim().run_until(seconds(1));
  ASSERT_EQ(agent.state(), SessionState::kActive);
  ASSERT_EQ(tb.server->standbys_ready(), 1u);

  // The standby dies first; the server notices and drops its spare.
  tb.net.sim().schedule_at(seconds(2), [&] { tb.standby_mbox->crash(); });
  tb.net.sim().run_until(seconds(3));
  EXPECT_EQ(tb.server->standbys_lost(), 1u);

  // Now the primary dies too: with no standby left, the old tunnel
  // failover path is the last resort.
  tb.net.sim().schedule_at(seconds(3), [&] { tb.mbox_host->crash(); });
  tb.net.sim().run_until(seconds(3) + 2 * cfg.lease_duration);
  EXPECT_EQ(tb.server->standby_promotions(), 0u);
  EXPECT_EQ(agent.state(), SessionState::kFallback);
  EXPECT_TRUE(tb.device_tunnel->active());
  EXPECT_EQ(agent.failovers(), 1u);
}

// --- Live migration across access networks -----------------------------------

TEST(Survivability, MigrationHandsOffStateAndTearsDownTheOldSession) {
  RoamingTestbed tb;

  PvnClient agent(*tb.client, tb.roaming_pvnc());
  agent.start_session(tb.addrs.control_a);
  tb.net.sim().run_until(seconds(1));
  ASSERT_EQ(agent.state(), SessionState::kActive);
  ASSERT_EQ(tb.a.server->deployments_active(), 1u);
  const std::string old_chain_id = agent.chain_id();

  // Build per-flow state through network A's chain.
  for (int i = 0; i < 5; ++i) {
    tb.client->send_udp(tb.addrs.web, static_cast<Port>(5000 + i), 80,
                        to_bytes("HTTP/1.1 200 OK Content-Type: video #" +
                                 std::to_string(i)));
  }
  tb.net.sim().run_until(seconds(2));
  Classifier* old_cls = find_classifier(tb.a.mbox->chain(old_chain_id));
  ASSERT_NE(old_cls, nullptr);
  const std::uint64_t flows_before = old_cls->flows_classified();
  ASSERT_GT(flows_before, 0u);

  // The device roams onto network B and migrates its PVN there.
  tb.re_attach();
  DeployOutcome outcome;
  bool done = false;
  agent.migrate(tb.addrs.control_b, milliseconds(300),
                [&](const DeployOutcome& o) {
                  outcome = o;
                  done = true;
                });
  tb.net.sim().run_until(seconds(8));

  ASSERT_TRUE(done);
  ASSERT_TRUE(outcome.ok) << outcome.failure;
  EXPECT_EQ(agent.migrations(), 1u);
  EXPECT_EQ(agent.state(), SessionState::kActive);

  // B pulled the old chain's state from A over the wan...
  EXPECT_EQ(tb.b.server->handoffs_completed(), 1u);
  EXPECT_EQ(tb.a.server->state_requests_served(), 1u);
  Classifier* new_cls = find_classifier(tb.b.mbox->chain(agent.chain_id()));
  ASSERT_NE(new_cls, nullptr);
  EXPECT_EQ(new_cls->flows_classified(), flows_before);

  // ...and after the drain window the old session is gone.
  EXPECT_EQ(tb.a.server->deployments_active(), 0u);
  EXPECT_EQ(tb.a.mbox->chain(old_chain_id), nullptr);
  EXPECT_EQ(tb.b.server->deployments_active(), 1u);

  // The migrated session stays healthy: renewals now flow to B.
  const std::uint64_t acked = agent.renews_acked();
  tb.net.sim().run_until(seconds(25));
  EXPECT_EQ(agent.state(), SessionState::kActive);
  EXPECT_GT(agent.renews_acked(), acked);
  EXPECT_EQ(tb.b.server->deployments_active(), 1u);
}

TEST(Survivability, FailedMigrationLeavesTheOldSessionUntouched) {
  RoamingTestbed tb;
  PvnClient agent(*tb.client, tb.roaming_pvnc());
  agent.start_session(tb.addrs.control_a);
  tb.net.sim().run_until(seconds(1));
  ASSERT_EQ(agent.state(), SessionState::kActive);
  const std::string old_chain_id = agent.chain_id();

  // Network B accepts discovery but drops deploys: the migration times out.
  tb.b.server->drop_deploy_requests(true);
  tb.re_attach();
  DeployOutcome outcome;
  bool done = false;
  agent.migrate(tb.addrs.control_b, milliseconds(300),
                [&](const DeployOutcome& o) {
                  outcome = o;
                  done = true;
                });
  tb.net.sim().run_until(seconds(10));

  ASSERT_TRUE(done);
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(agent.migrations(), 0u);
  EXPECT_FALSE(agent.migrating());

  // Still on A, same chain, no fallback; renewals keep being answered.
  EXPECT_EQ(agent.state(), SessionState::kActive);
  EXPECT_EQ(agent.chain_id(), old_chain_id);
  EXPECT_EQ(agent.failovers(), 0u);
  EXPECT_EQ(tb.a.server->deployments_active(), 1u);
  EXPECT_EQ(tb.b.server->deployments_active(), 0u);
  const std::uint64_t acked = agent.renews_acked();
  tb.net.sim().run_until(seconds(25));
  EXPECT_EQ(agent.state(), SessionState::kActive);
  EXPECT_GT(agent.renews_acked(), acked);
}

// A migration where the old server cannot serve state (it already crashed)
// still completes the deployment — without restored state, but without
// wedging the client on network B.
TEST(Survivability, MigrationSurvivesAnUnreachableOldServer) {
  RoamingTestbed tb;
  PvnClient agent(*tb.client, tb.roaming_pvnc());
  agent.start_session(tb.addrs.control_a);
  tb.net.sim().run_until(seconds(1));
  ASSERT_EQ(agent.state(), SessionState::kActive);

  // Kill the A-side control host outright: state requests go unanswered and
  // B's handoff must time out rather than block the deployment forever.
  tb.faults->crash_node(*tb.control_a);
  tb.re_attach();
  DeployOutcome outcome;
  bool done = false;
  agent.migrate(tb.addrs.control_b, milliseconds(300),
                [&](const DeployOutcome& o) {
                  outcome = o;
                  done = true;
                });
  tb.net.sim().run_until(seconds(10));

  ASSERT_TRUE(done);
  ASSERT_TRUE(outcome.ok) << outcome.failure;
  EXPECT_EQ(agent.state(), SessionState::kActive);
  EXPECT_EQ(agent.migrations(), 1u);
  EXPECT_EQ(tb.b.server->deployments_active(), 1u);
  EXPECT_EQ(tb.b.server->handoffs_completed(), 0u);
  EXPECT_EQ(tb.b.server->handoff_timeouts(), 1u);
}

}  // namespace
}  // namespace pvn
